// Package wavelet implements a Huffman-shaped wavelet tree over a
// sequence of small integer symbols (Ferragina, Manzini, Mäkinen,
// Navarro, ACM TALG 2007). It stores a sequence of n symbols with
// zero-order entropy H0 in roughly n·H0 + o(n) bits and answers
// Access, Rank and Select in O(H0) expected time, which is what the
// XBW-b FIB representation needs for its label string S_α.
package wavelet

import (
	"fmt"

	"fibcomp/internal/bitvec"
	"fibcomp/internal/huffman"
)

// Tree is an immutable Huffman-shaped wavelet tree.
type Tree struct {
	root  *node
	codes map[uint32]huffman.Code
	n     int
}

type node struct {
	bv          *bitvec.RRR
	left, right *node
	leafSym     uint32
	isLeaf      bool
}

// New builds a wavelet tree over seq. The alphabet is whatever symbols
// occur in seq. An empty sequence is allowed and yields a tree whose
// queries all report "not found".
func New(seq []uint32) (*Tree, error) {
	t := &Tree{n: len(seq)}
	if len(seq) == 0 {
		return t, nil
	}
	freq := map[uint32]uint64{}
	for _, s := range seq {
		freq[s]++
	}
	cb, err := huffman.New(freq)
	if err != nil {
		return nil, err
	}
	t.codes = cb.Codes()
	t.root = t.build(seq, 0)
	return t, nil
}

// build recursively constructs the node for the given subsequence at
// code depth d.
func (t *Tree) build(seq []uint32, d int) *node {
	if len(seq) == 0 {
		return nil
	}
	first := t.codes[seq[0]]
	if first.Len == d {
		// Prefix-freeness guarantees every element here is the same
		// symbol.
		return &node{isLeaf: true, leafSym: seq[0]}
	}
	b := bitvec.NewBuilder(len(seq))
	var lseq, rseq []uint32
	for _, s := range seq {
		c := t.codes[s]
		bit := c.Bits>>(uint(c.Len-1-d))&1 == 1
		b.Append(bit)
		if bit {
			rseq = append(rseq, s)
		} else {
			lseq = append(lseq, s)
		}
	}
	return &node{
		bv:    b.BuildRRR(),
		left:  t.build(lseq, d+1),
		right: t.build(rseq, d+1),
	}
}

// Len reports the sequence length.
func (t *Tree) Len() int { return t.n }

// Access returns the symbol at position i (0-based).
func (t *Tree) Access(i int) uint32 {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("wavelet: Access(%d) out of range [0,%d)", i, t.n))
	}
	nd := t.root
	for !nd.isLeaf {
		if nd.bv.Bit(i) {
			i = nd.bv.Rank1(i)
			nd = nd.right
		} else {
			i = nd.bv.Rank0(i)
			nd = nd.left
		}
	}
	return nd.leafSym
}

// Rank returns the number of occurrences of symbol s in positions
// [0, i). Unknown symbols report 0.
func (t *Tree) Rank(s uint32, i int) int {
	if i < 0 || i > t.n {
		panic(fmt.Sprintf("wavelet: Rank(%d,%d) out of range [0,%d]", s, i, t.n))
	}
	c, ok := t.codes[s]
	if !ok || i == 0 {
		return 0
	}
	nd := t.root
	for d := 0; d < c.Len; d++ {
		if nd.isLeaf {
			break
		}
		if c.Bits>>(uint(c.Len-1-d))&1 == 1 {
			i = nd.bv.Rank1(i)
			nd = nd.right
		} else {
			i = nd.bv.Rank0(i)
			nd = nd.left
		}
		if nd == nil || i == 0 {
			return 0
		}
	}
	return i
}

// Select returns the position (0-based) of the k-th occurrence of s
// (k is 1-based), or -1 if there are fewer than k occurrences.
func (t *Tree) Select(s uint32, k int) int {
	c, ok := t.codes[s]
	if !ok || k <= 0 {
		return -1
	}
	// Collect the root→leaf path, then climb back up.
	path := make([]*node, 0, c.Len)
	nd := t.root
	for d := 0; d < c.Len; d++ {
		if nd == nil || nd.isLeaf {
			break
		}
		path = append(path, nd)
		if c.Bits>>(uint(c.Len-1-d))&1 == 1 {
			nd = nd.right
		} else {
			nd = nd.left
		}
	}
	if nd == nil || !nd.isLeaf || nd.leafSym != s {
		return -1
	}
	pos := k
	for d := len(path) - 1; d >= 0; d-- {
		p := path[d]
		var q int
		if c.Bits>>(uint(c.Len-1-d))&1 == 1 {
			q = p.bv.Select1(pos)
		} else {
			q = p.bv.Select0(pos)
		}
		if q < 0 {
			return -1
		}
		pos = q + 1
	}
	return pos - 1
}

// Count returns the number of occurrences of s in the whole sequence.
func (t *Tree) Count(s uint32) int { return t.Rank(s, t.n) }

// SizeBits reports the storage of all node bitvectors plus directories,
// the quantity compared against n·H0 in the paper's Lemma 3.
func (t *Tree) SizeBits() int {
	var total int
	var walk func(nd *node)
	walk = func(nd *node) {
		if nd == nil || nd.isLeaf {
			return
		}
		total += nd.bv.SizeBits()
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return total
}
