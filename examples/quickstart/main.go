// Quickstart: build a FIB, compress it both ways, look up addresses,
// and apply live updates — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	fibcomp "fibcomp"
)

func main() {
	// A small FIB: default route plus a few customer prefixes.
	table := fibcomp.MustParse(
		"0.0.0.0/0 1",      // default → upstream
		"10.0.0.0/8 2",     // corporate
		"10.1.0.0/16 3",    // datacenter
		"192.168.0.0/16 2", // campus
	)

	// The paper's compressibility metrics (§2).
	m := fibcomp.Metrics(table)
	fmt.Printf("FIB: %d prefixes, δ=%d next-hops, H0=%.3f\n", table.N(), m.Delta, m.H0)
	fmt.Printf("information-theoretic limit I = %.0f bits, FIB entropy E = %.0f bits\n",
		m.InfoBound, m.Entropy)

	// Trie-folding prefix DAG (§4): compressed, updatable, O(W) lookup.
	dag, err := fibcomp.Compress(table, fibcomp.DefaultBarrier)
	if err != nil {
		log.Fatal(err)
	}
	lookup := func(s string) {
		addr, err := fibcomp.ParseAddr(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s → next-hop %d\n", s, dag.Lookup(addr))
	}
	fmt.Println("prefix DAG lookups:")
	lookup("10.1.2.3") // → 3 (most specific wins)
	lookup("10.2.0.1") // → 2
	lookup("8.8.8.8")  // → 1 (default)

	// Live update: move the datacenter to a new next-hop.
	addr, _ := fibcomp.ParseAddr("10.1.0.0")
	if err := dag.Set(addr, 16, 4); err != nil {
		log.Fatal(err)
	}
	fmt.Println("after update 10.1.0.0/16 → 4:")
	lookup("10.1.2.3") // → 4

	// XBW-b (§3): the succinct static representation.
	x, err := fibcomp.CompressXBW(table)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XBW-b: %d bits for %d leaves (entropy bound E = %.0f bits)\n",
		x.SizeBits(), x.Leaves(), m.Entropy)

	// ORTC aggregation (the classic baseline): fewer rows, same
	// forwarding behaviour.
	agg := fibcomp.Aggregate(table)
	fmt.Printf("ORTC: %d entries instead of %d\n", agg.N(), table.N())
}
