package ribd

import (
	"math/rand"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"fibcomp/internal/gen"
	"fibcomp/internal/obs"
	"fibcomp/internal/shardfib"
)

// Prometheus text-exposition grammar: comment lines and sample lines.
// Metric names [a-zA-Z_:][a-zA-Z0-9_:]*, optional pre-rendered label
// block, and a decimal or scientific-notation value.
var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	promSample  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+]Inf|NaN)$`)
)

// scrapeValues renders the registry in exposition format, validates
// every line against the grammar, and returns the samples summed by
// bare metric name (label blocks collapse — exactly what the
// conservation identity wants). Histogram series keep their suffixed
// names; only a series' +Inf bucket counts toward <name>_bucket.
func scrapeValues(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, labels := m[1], m[2]
		v, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if strings.HasSuffix(name, "_bucket") && !strings.Contains(labels, `le="+Inf"`) {
			continue
		}
		vals[name] += v
	}
	return vals
}

// TestMetricsExposition drives a small dual-stack plane with every
// telemetry layer registered and checks the scrape end to end: the
// text parses clean under the exposition grammar, histogram buckets
// are cumulative and monotone with +Inf equal to _count, and the
// plane's counters obey Received + Swept = Coalesced + Applied +
// pending at a sync barrier.
func TestMetricsExposition(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	tab, err := gen.SplitFIB(rng, 800, []float64{0.5, 0.3, 0.15, 0.05})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shardfib.Build(tab, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := New(eng, Options{MaxStaleness: time.Millisecond})
	defer p.Close()

	reg := obs.NewRegistry()
	p.RegisterMetrics(reg)
	ins := &shardfib.Instruments{PublishSeconds: obs.NewHistogram(1e-9), Trace: obs.NewTraceRing(64)}
	eng.SetInstruments(ins)
	shardfib.RegisterMetrics(reg, ins, eng, nil)

	// A churny feed with built-in redundancy: BGP-style updates where
	// re-announcements and flaps are common, plus a literal duplicate
	// burst so coalescing is guaranteed to fire.
	us := gen.BGPUpdates(rng, tab, 600)
	us = append(us, us[:50]...)
	for _, u := range us {
		p.Enqueue(u)
	}
	p.Sync()

	vals := scrapeValues(t, reg)
	for _, name := range []string{"ribd_received_total", "ribd_applied_total", "ribd_flushes_total"} {
		if vals[name] == 0 {
			t.Fatalf("%s = 0 after a churny feed: %v", name, vals)
		}
	}
	if vals["ribd_pending"] != 0 {
		t.Fatalf("pending = %v at a sync barrier, want 0", vals["ribd_pending"])
	}
	if vals["ribd_received_total"]+vals["ribd_swept_total"] !=
		vals["ribd_coalesced_total"]+vals["ribd_applied_total"] {
		t.Fatalf("conservation violated at barrier: %v", vals)
	}
	if vals["shardfib_publish_seconds_bucket"] == 0 || vals["ribd_flush_seconds_bucket"] == 0 {
		t.Fatalf("histograms recorded nothing: %v", vals)
	}

	// Histogram series invariants, checked per label-block series:
	// cumulative bucket counts never decrease as le grows, and the
	// +Inf bucket equals _count.
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	type series struct {
		last    float64
		inf     float64
		lastLe  float64
		started bool
	}
	hists := make(map[string]*series)
	counts := make(map[string]float64)
	for _, line := range strings.Split(b.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promSample.FindStringSubmatch(line)
		name, labels := m[1], m[2]
		v, _ := strconv.ParseFloat(m[4], 64)
		switch {
		case strings.HasSuffix(name, "_bucket"):
			base := strings.TrimSuffix(name, "_bucket")
			key := base + stripLe(labels)
			s := hists[key]
			if s == nil {
				s = &series{}
				hists[key] = s
			}
			le := leOf(t, labels)
			if le == -1 { // +Inf
				s.inf = v
				break
			}
			if s.started && (v < s.last || le <= s.lastLe) {
				t.Fatalf("bucket series %s not monotone at le=%v: %v after %v", key, le, v, s.last)
			}
			s.last, s.lastLe, s.started = v, le, true
		case strings.HasSuffix(name, "_count"):
			counts[strings.TrimSuffix(name, "_count")+labels] = v
		}
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series in the exposition")
	}
	for key, s := range hists {
		if s.inf != counts[key] {
			t.Fatalf("series %s: +Inf bucket %v != _count %v", key, s.inf, counts[key])
		}
		if s.started && s.last > s.inf {
			t.Fatalf("series %s: finite bucket %v exceeds +Inf %v", key, s.last, s.inf)
		}
	}
}

// stripLe removes the le label from a histogram label block, leaving
// the series key shared by every bucket of one histogram.
func stripLe(labels string) string {
	if labels == "" {
		return ""
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var kept []string
	for _, kv := range strings.Split(inner, ",") {
		if !strings.HasPrefix(kv, `le="`) {
			kept = append(kept, kv)
		}
	}
	if len(kept) == 0 {
		return ""
	}
	return "{" + strings.Join(kept, ",") + "}"
}

// leOf extracts the le boundary from a bucket label block; -1 for
// +Inf.
func leOf(t *testing.T, labels string) float64 {
	t.Helper()
	i := strings.Index(labels, `le="`)
	if i < 0 {
		t.Fatalf("bucket sample without le label: %q", labels)
	}
	rest := labels[i+4:]
	j := strings.IndexByte(rest, '"')
	if rest[:j] == "+Inf" {
		return -1
	}
	v, err := strconv.ParseFloat(rest[:j], 64)
	if err != nil {
		t.Fatalf("unparseable le %q: %v", rest[:j], err)
	}
	return v
}
