package obs

import (
	"math/rand"
	"strings"
	"testing"
)

// TestBucketGeometry pins the log-linear bucket math: every value
// lands in a bucket whose bounds contain it, indices are monotone in
// the value, and upper bounds are strictly increasing — the
// properties the exposition's cumulative-bucket convention and the
// quantile estimator both rest on.
func TestBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	probe := func(v uint64) {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of [0,%d)", v, i, histBuckets)
		}
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket %d's upper bound %d", v, i, up)
		}
		if i > 0 {
			if lo := bucketUpper(i-1) + 1; v < lo {
				t.Fatalf("value %d below its bucket %d's lower bound %d", v, i, lo)
			}
		}
	}
	for v := uint64(0); v < 4096; v++ {
		probe(v)
	}
	for k := 0; k < 100000; k++ {
		probe(rng.Uint64())
	}
	probe(^uint64(0))
	for i := 1; i < histBuckets; i++ {
		if bucketUpper(i) <= bucketUpper(i-1) {
			t.Fatalf("bucket upper bounds not increasing at %d: %d then %d", i, bucketUpper(i-1), bucketUpper(i))
		}
	}
}

// TestHistogramQuantile checks the estimator against an exact
// distribution: with log-linear buckets at histSubBits=3 the relative
// error of any quantile is bounded by one bucket width (12.5% of the
// value, plus half a bucket of interpolation slack).
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0)
	rng := rand.New(rand.NewSource(2))
	vals := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(rng.Intn(1_000_000))
		vals = append(vals, v)
		h.Observe(v)
	}
	if h.Count() != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(vals))
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 1_000_000 // uniform distribution
		if rel := (got - want) / want; rel < -0.15 || rel > 0.15 {
			t.Fatalf("Quantile(%.2f) = %.0f, want ~%.0f (rel err %.2f)", q, got, want, rel)
		}
	}
	empty := NewHistogram(0)
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
}

// TestCounterCells checks per-cell isolation and aggregation.
func TestCounterCells(t *testing.T) {
	c := NewCounter(4)
	for i := 0; i < 4; i++ {
		c.Cell(i).Add(uint64(i + 1))
	}
	if c.Value() != 10 {
		t.Fatalf("Value = %d, want 10", c.Value())
	}
	if c.CellValue(2) != 3 {
		t.Fatalf("CellValue(2) = %d, want 3", c.CellValue(2))
	}
	if NewCounter(0).Cells() != 1 {
		t.Fatal("NewCounter(0) should clamp to one cell")
	}
}

// TestRegistryErrors pins registration validation: bad names and
// duplicate name+label pairs are refused, distinct label blocks under
// one name are fine.
func TestRegistryErrors(t *testing.T) {
	r := NewRegistry()
	if err := r.CounterFunc("0bad", "", "", func() uint64 { return 0 }); err == nil {
		t.Fatal("name starting with a digit accepted")
	}
	if err := r.CounterFunc("x_total", `family="4"`, "", func() uint64 { return 0 }); err != nil {
		t.Fatal(err)
	}
	if err := r.CounterFunc("x_total", `family="4"`, "", func() uint64 { return 0 }); err == nil {
		t.Fatal("duplicate name+labels accepted")
	}
	if err := r.CounterFunc("x_total", `family="6"`, "", func() uint64 { return 0 }); err != nil {
		t.Fatalf("second label block under one name refused: %v", err)
	}
}

// TestTraceRing checks wrap-around retention and newest-first
// snapshots.
func TestTraceRing(t *testing.T) {
	r := NewTraceRing(10) // rounds up to 16
	if r.Cap() != 16 {
		t.Fatalf("Cap = %d, want 16", r.Cap())
	}
	for i := 0; i < 40; i++ {
		r.Record(TraceEvent{Kind: TraceApplyBatch, Ops: int32(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 16 {
		t.Fatalf("snapshot kept %d events, want 16", len(evs))
	}
	for k, ev := range evs {
		if want := int32(39 - k); ev.Ops != want {
			t.Fatalf("snapshot[%d].Ops = %d, want %d (newest first)", k, ev.Ops, want)
		}
		if ev.KindS != "apply_batch" {
			t.Fatalf("snapshot[%d].KindS = %q", k, ev.KindS)
		}
	}
	var nilRing *TraceRing
	nilRing.Record(TraceEvent{}) // must be a safe no-op
	if nilRing.Snapshot() != nil || nilRing.Len() != 0 || nilRing.Cap() != 0 {
		t.Fatal("nil ring not inert")
	}
}

// TestWriteAllocs pins the hot-path contract the whole package exists
// to keep: recording into cells, histograms and the trace ring
// allocates nothing.
func TestWriteAllocs(t *testing.T) {
	c := NewCounter(2)
	h := NewHistogram(1e-9)
	r := NewTraceRing(64)
	cell := c.Cell(1)
	allocs := testing.AllocsPerRun(200, func() {
		cell.Add(3)
		h.Observe(12345)
		r.Record(TraceEvent{Kind: TraceApplyBatch, Family: 4, Shards: 3, Bytes: 4096, DurUs: 17})
	})
	if allocs != 0 {
		t.Fatalf("telemetry writes allocated %.2f times per round, want 0", allocs)
	}
}

// TestSnapshot checks the statusz-side view: values, per-cell rows
// and histogram quantiles in exposition units.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	c := NewCounter(2)
	c.Cell(0).Add(5)
	c.Cell(1).Add(7)
	r.MustCounter("w_total", "", "", c, "worker")
	h := NewHistogram(1e-3)
	h.Observe(1000) // raw ms-ish unit: 1000 raw = 1.0 exposed
	r.MustHistogram("d_seconds", "", "", h)
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	// Sorted by name: d_seconds then w_total.
	if snaps[0].Name != "d_seconds" || snaps[0].Count != 1 {
		t.Fatalf("histogram snapshot wrong: %+v", snaps[0])
	}
	if snaps[0].P50 < 0.8 || snaps[0].P50 > 1.2 {
		t.Fatalf("scaled P50 = %v, want ~1.0", snaps[0].P50)
	}
	if snaps[1].Value != 12 || len(snaps[1].Cells) != 2 || snaps[1].Cells[1] != 7 {
		t.Fatalf("counter snapshot wrong: %+v", snaps[1])
	}
}

// TestHelpTypeOncePerFamily checks that two label blocks of one
// metric family share a single # TYPE header (Prometheus requires
// it).
func TestHelpTypeOncePerFamily(t *testing.T) {
	r := NewRegistry()
	r.MustCounterFunc("f_total", `family="4"`, "per-family", func() uint64 { return 1 })
	r.MustCounterFunc("f_total", `family="6"`, "per-family", func() uint64 { return 2 })
	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "# TYPE f_total counter") != 1 {
		t.Fatalf("TYPE header not emitted exactly once:\n%s", out)
	}
	if !strings.Contains(out, `f_total{family="4"} 1`) || !strings.Contains(out, `f_total{family="6"} 2`) {
		t.Fatalf("label blocks missing:\n%s", out)
	}
}
