// Package lctrie implements a level-compressed multibit trie in the
// spirit of Nilsson–Karlsson (IEEE JSAC 1999) and the Linux kernel's
// fib_trie, the reference lookup engine of the paper's Table 2. The
// largest near-complete top of each binary subtree is collapsed into
// one 2^k-way branch node (controlled by a fill factor, like the
// kernel's inflate/halve thresholds); shallower leaves are replicated
// into the slots they cover (controlled prefix expansion).
//
// The memory layout emulates the kernel's, not a packed array: branch
// slots are 8-byte pointer-sized words and every leaf is a separate
// 64-byte struct (leaf + leaf_info) that the lookup actually reads.
// That is what makes fib_trie occupy tens of megabytes and miss the
// cache on random traffic (§5.3) — and the effect shows up here in
// wall-clock measurements, not just in the cache simulator.
package lctrie

import (
	"fmt"

	"fibcomp/internal/fib"
	"fibcomp/internal/trie"
)

// Slot word encoding: bit 63 marks a leaf; a leaf word carries the
// leaf struct index (bits 8..62) and the label (low 8 bits, also
// stored in the leaf struct); a branch word packs the branch-bit count
// (bits 56..62) and the index of its first child slot.
const (
	leafFlag    = uint64(1) << 63
	maxChildIdx = (1 << 40) - 1
)

// Kernel-calibrated struct sizes (64-bit Linux): struct tnode header,
// pointer-sized child slots, struct leaf + leaf_info per route, and a
// fib_alias record per prefix.
const (
	tnodeHeaderBytes = 40
	slotPtrBytes     = 8
	leafStructBytes  = 64
	aliasBytes       = 24
)

// Trie is an immutable level-compressed multibit trie.
type Trie struct {
	words    []uint64 // slot array; words[0] is the root
	leafData []byte   // one leafStructBytes record per distinct leaf
	leaves   int
	// nPrefixes is the prefix count of the source FIB, for the alias
	// part of the memory model.
	nPrefixes int
	branches  int
	maxBits   int
}

// Build constructs an LC-trie from a FIB table with the given fill
// factor in (0, 1]; 0.5 matches the kernel's defaults closely. The
// root node is always allowed to grow (the kernel lets the root
// inflate aggressively), capped at rootBits.
func Build(t *fib.Table, fill float64, rootBits int) (*Trie, error) {
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("lctrie: fill factor %v out of (0,1]", fill)
	}
	if rootBits < 1 || rootBits > 20 {
		return nil, fmt.Errorf("lctrie: root bits %d out of [1,20]", rootBits)
	}
	lp := trie.FromTable(t).LeafPush()
	b := &builder{fill: fill, rootBits: rootBits, leafIDs: map[*trie.Node]uint64{}}
	// Reserve slot 0 for the root.
	b.words = append(b.words, 0)
	b.words[0] = b.encode(lp.Root, true)
	lt := &Trie{
		words:     b.words,
		leaves:    len(b.leafIDs),
		nPrefixes: t.N(),
		branches:  b.branches,
		maxBits:   b.maxBits,
	}
	// Materialize the leaf region: each distinct leaf is a 64-byte
	// struct whose first byte holds the label (the rest stands in for
	// the key, plen and leaf_info fields the kernel keeps there).
	lt.leafData = make([]byte, lt.leaves*leafStructBytes)
	for n, id := range b.leafIDs {
		lt.leafData[int(id)*leafStructBytes] = byte(n.Label)
	}
	return lt, nil
}

type builder struct {
	words    []uint64
	fill     float64
	rootBits int
	leafIDs  map[*trie.Node]uint64
	branches int
	maxBits  int
}

// encode returns the word for subtree n, appending child arrays to
// the slot array as needed.
func (b *builder) encode(n *trie.Node, isRoot bool) uint64 {
	if n.IsLeaf() {
		return b.leafWord(n)
	}
	k := b.chooseBits(n, isRoot)
	base := len(b.words)
	if base+1<<uint(k) > maxChildIdx {
		k = 1
	}
	b.branches++
	if k > b.maxBits {
		b.maxBits = k
	}
	// Allocate the child slots first so they are consecutive.
	for i := 0; i < 1<<uint(k); i++ {
		b.words = append(b.words, 0)
	}
	for i := 0; i < 1<<uint(k); i++ {
		child := descend(n, uint32(i), k)
		b.words[base+i] = b.encode(child, false)
	}
	return uint64(k)<<56 | uint64(base)
}

// descend walks k bits (MSB-first within the slot index) from n,
// stopping early at leaves (which are thereby replicated into every
// slot they cover — controlled prefix expansion; replicated slots
// share one leaf struct, as pointers would).
func descend(n *trie.Node, idx uint32, k int) *trie.Node {
	for j := k - 1; j >= 0; j-- {
		if n.IsLeaf() {
			return n
		}
		if idx>>uint(j)&1 == 0 {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// chooseBits picks the branch factor: the largest k such that the
// proper trie still has at least fill·2^k nodes at depth k below n.
func (b *builder) chooseBits(n *trie.Node, isRoot bool) int {
	limit := 18
	if isRoot {
		limit = b.rootBits
	}
	best := 1
	nodes := []*trie.Node{n.Left, n.Right}
	for k := 2; k <= limit; k++ {
		var next []*trie.Node
		count := 0
		for _, c := range nodes {
			if c.IsLeaf() {
				continue
			}
			next = append(next, c.Left, c.Right)
			count += 2
		}
		if float64(count) < b.fill*float64(int(1)<<uint(k)) {
			break
		}
		best = k
		nodes = next
	}
	return best
}

// leafWord encodes a leaf; every distinct leaf node is a separate
// kernel-style allocation addressed by its identifier.
func (b *builder) leafWord(n *trie.Node) uint64 {
	id, ok := b.leafIDs[n]
	if !ok {
		id = uint64(len(b.leafIDs))
		b.leafIDs[n] = id
	}
	return leafFlag | id<<8 | uint64(n.Label&0xFF)
}

// Lookup performs longest prefix match in one multibit descent,
// finishing — like the kernel — by reading the leaf struct itself.
func (t *Trie) Lookup(addr uint32) uint32 {
	w := t.words[0]
	q := 0
	for w&leafFlag == 0 {
		k := int(w >> 56)
		base := w & maxChildIdx
		idx := extract(addr, q, k)
		w = t.words[base+uint64(idx)]
		q += k
	}
	id := w >> 8 & (1<<55 - 1)
	return uint32(t.leafData[id*leafStructBytes])
}

// LookupDepth is Lookup instrumented with the number of branch nodes
// visited (the "depth" rows of Table 2; the root counts as depth 0).
func (t *Trie) LookupDepth(addr uint32) (label uint32, depth int) {
	w := t.words[0]
	q := 0
	for w&leafFlag == 0 {
		depth++
		k := int(w >> 56)
		base := w & maxChildIdx
		idx := extract(addr, q, k)
		w = t.words[base+uint64(idx)]
		q += k
	}
	id := w >> 8 & (1<<55 - 1)
	return uint32(t.leafData[id*leafStructBytes]), depth
}

// LookupTrace reports the byte offsets touched by a lookup — slot
// reads in the tnode region followed by the leaf struct read — for
// the cache simulator. Offsets match the real layout walked by Lookup.
func (t *Trie) LookupTrace(addr uint32, visit func(byteOffset int)) uint32 {
	leafRegion := len(t.words) * slotPtrBytes
	w := t.words[0]
	visit(0)
	q := 0
	for w&leafFlag == 0 {
		k := int(w >> 56)
		base := w & maxChildIdx
		idx := extract(addr, q, k)
		visit(int(base+uint64(idx)) * slotPtrBytes)
		w = t.words[base+uint64(idx)]
		q += k
	}
	id := int(w >> 8 & (1<<55 - 1))
	visit(leafRegion + id*leafStructBytes)
	return uint32(t.leafData[id*leafStructBytes])
}

// extract returns k address bits starting at bit q (MSB-first).
func extract(addr uint32, q, k int) uint32 {
	return addr << uint(q) >> uint(32-k)
}

// StructureBytes is the memory actually allocated and walked by
// Lookup: pointer slots plus leaf structs.
func (t *Trie) StructureBytes() int {
	return len(t.words)*slotPtrBytes + len(t.leafData)
}

// ModelBytes is the full kernel footprint: the walked structure plus
// tnode headers and per-prefix alias records. This is the "size"
// column Table 2 reports for fib_trie.
func (t *Trie) ModelBytes() int {
	return t.StructureBytes() +
		t.branches*tnodeHeaderBytes +
		t.nPrefixes*aliasBytes
}

// Branches reports the number of multibit branch nodes.
func (t *Trie) Branches() int { return t.branches }

// Leaves reports the number of distinct leaf structs.
func (t *Trie) Leaves() int { return t.leaves }

// MaxBits reports the largest branch factor chosen.
func (t *Trie) MaxBits() int { return t.maxBits }
