package ip6

import (
	"errors"
	"fmt"
)

// Blob is the serialized, read-only lookup structure for the IPv6
// DAG — the same two-word-per-interior-node encoding as the IPv4 v1
// blob (pdag.Blob), with the 2^λ-entry root array indexed by the top
// λ bits of the 128-bit address. Each root entry packs the inherited
// default label with a pointer into the folded region; leaves are
// inlined into their parent's words. Below the barrier a walk
// consumes one address bit per node word, streamed out of the
// (Hi, Lo) pair like a 128-bit shift register.
type Blob struct {
	Lambda int
	Root   []uint32 // 2^λ entries: def<<24 | payload
	Nodes  []uint32 // 2 words per interior node: payload each

	// Incremental-republish stamps (see SerializeInto): the DAG whose
	// group geometry laid this buffer out, the generation of that
	// layout, and the mutation generation the contents reflect.
	owner  *DAG
	geoGen uint64
	gen    uint64
}

// Payload encoding, shared with the IPv4 blob so the shardfib merged
// view can splice root arrays of either family identically.
const (
	blobNone     = 0x00FFFFFF // root entry: no folded subtree
	blobLeafFlag = 0x00800000 // root entry payload: inlined leaf
	wordLeafFlag = 0x80000000 // node word: inlined leaf
	maxBlobIdx   = 0x007FFFFF
)

// maxSerialLambda bounds the root array to 64 MB, as for IPv4. Real
// IPv6 tables concentrate under 2000::/3, so barriers past ~16 only
// dilute the root array further.
const maxSerialLambda = 24

// groupBitsMax bounds the dirty-tracking granularity: the root array
// is partitioned by its top min(λ, 8) bits into at most 256 contiguous
// groups, each owning a stable region of the folded buffers. The
// trade is re-emission cost against per-group slack and bookkeeping:
// a steady-churn republish re-emits ~1/256 of the folded region per
// dirty buffer generation, while the fixed slack each group carries
// (see the relayout passes) stays a small fraction of a realistic
// table. Coarser groups were measured to leave the per-update cost
// dominated by re-expanding clean strides inside the one dirty group.
const groupBitsMax = 8

func (d *DAG) groupBits() int {
	if d.Lambda < groupBitsMax {
		return d.Lambda
	}
	return groupBitsMax
}

// serialGeom is the stable group layout of one serialized format:
// group g owns units [base[g], base[g]+capn[g]) of the folded region
// (node indices for the v1 blob, words for v2), of which used[g] are
// live. Bases never move while gen is unchanged — re-emitting a dirty
// group cannot disturb a clean one — and every full layout grants
// each group slack so steady churn re-emits in place. A group that
// outgrows its region forces a fresh layout under a new gen, which
// invalidates (and fully rewrites) any buffer stamped with the old
// one.
type serialGeom struct {
	gen   uint64
	total uint32
	base  []uint32
	used  []uint32
	capn  []uint32
}

func (g *serialGeom) ensure(n int) {
	if cap(g.base) < n {
		g.base = make([]uint32, n)
		g.used = make([]uint32, n)
		g.capn = make([]uint32, n)
	}
	g.base = g.base[:n]
	g.used = g.used[:n]
	g.capn = g.capn[:n]
}

// errRegionFull aborts a group emission that no longer fits its
// region; the serializer falls back to a full re-layout. The abort
// happens before any folded word is written (only root entries of the
// aborted group may be stale), so the fallback pass starts clean.
var errRegionFull = errors.New("ip6: dirty group outgrew its region")

// serialNoLimit disables the region bound for re-layout passes; the
// honest maxBlobIdx check still applies.
const serialNoLimit = ^uint32(0)

// markDirty advances the mutation generation and records it on every
// root-stride group the update covers; the serializers re-emit only
// groups whose generation is newer than the target buffer's. An
// update at depth ≥ the group depth lands in exactly one group, a
// shorter prefix covers a power-of-two run (a is canonical, so the
// run starts at its group).
func (d *DAG) markDirty(a Addr, plen int) {
	d.mutGen++
	if d.lastMut == nil {
		return
	}
	gb := d.groupBits()
	g := int(a.Hi >> uint(64-gb))
	if plen >= gb {
		d.lastMut[g] = d.mutGen
		return
	}
	for n := 1 << uint(gb-plen); n > 0; n-- {
		d.lastMut[g] = d.mutGen
		g++
	}
}

// groupPlan walks the plain region above the group depth once,
// recording for every group the subtree hanging at its path and the
// default label in force there — the per-group inputs both
// serializers hand to fillRoot. Folded nodes hang exactly at depth λ,
// so at group depth min(λ, 6) a group's subtree is a plain node, a
// folded node (λ ≤ 6), or nil; never a folded node spanning groups.
func (d *DAG) groupPlan() {
	gb := d.groupBits()
	n := 1 << uint(gb)
	if cap(d.groupNode) < n {
		d.groupNode = make([]*dnode, n)
		d.groupDef = make([]uint32, n)
	}
	d.groupNode = d.groupNode[:n]
	d.groupDef = d.groupDef[:n]
	d.planWalk(d.root, 0, 0, NoLabel, gb)
}

func (d *DAG) planWalk(n *dnode, v uint32, depth int, def uint32, gb int) {
	if depth == gb || n == nil || n.kind != kindUp {
		lo := int(v) << uint(gb-depth)
		hi := lo + 1<<uint(gb-depth)
		for g := lo; g < hi; g++ {
			d.groupNode[g] = n
			d.groupDef[g] = def
		}
		return
	}
	if n.label != NoLabel {
		def = n.label
	}
	d.planWalk(n.left, 2*v, depth+1, def, gb)
	d.planWalk(n.right, 2*v+1, depth+1, def, gb)
}

// Serialize freezes the DAG into a fresh Blob. Like the IPv4
// serializer it advances the DAG's stamping epoch, so concurrent
// Serialize calls on one DAG are not safe; serialize under the same
// exclusion that guards Set/Delete.
func (d *DAG) Serialize() (*Blob, error) {
	return d.SerializeInto(nil)
}

// SerializeInto freezes the DAG into b, reusing b's Root and Nodes
// buffers when their capacity suffices; b == nil allocates a fresh
// blob. The folded region is laid out group by group (one group per
// top min(λ, 6) root bits), each group serialized under its own
// stamping epoch so hash-consed sharing stays confined within the
// group — the invariant that makes regions independent. When b was
// last written by this DAG under the current group layout, only the
// groups mutated since b's generation are re-emitted, in place at
// their stable bases, with zero heap allocations: steady-churn
// republish cost scales with the batch footprint, not the table. The
// caller owns the exclusivity of b — it must not be reachable by
// concurrent readers (shardfib proves this with a reader count before
// recycling a retired snapshot). On error b's contents are
// unspecified and must not be published.
func (d *DAG) SerializeInto(b *Blob) (*Blob, error) {
	if d.Lambda > maxSerialLambda {
		return nil, fmt.Errorf("ip6: cannot serialize with barrier λ=%d > %d", d.Lambda, maxSerialLambda)
	}
	rootLen := 1 << uint(d.Lambda)
	d.groupPlan()
	if b != nil && b.owner == d && d.geo1.gen != 0 && b.geoGen == d.geo1.gen &&
		b.Lambda == d.Lambda && len(b.Root) == rootLen && len(b.Nodes) == 2*int(d.geo1.total) {
		if err := d.emitDirtyV1(b); err == nil {
			b.gen = d.mutGen
			return b, nil
		}
		// A dirty group outgrew its region: fall through to the full
		// pass, which re-lays the geometry out with fresh slack.
	}
	if b == nil {
		b = &Blob{}
	}
	b.Lambda = d.Lambda
	if cap(b.Root) >= rootLen {
		b.Root = b.Root[:rootLen]
	} else {
		b.Root = make([]uint32, rootLen)
	}
	var err error
	if d.geo1.gen != 0 {
		// A layout exists (the other buffer of a double-buffered
		// publish cycle may be stamped with it): emit every group into
		// its existing region so both buffers share one geometry and
		// keep taking the incremental path.
		err = d.emitAllV1(b, false)
		if err == errRegionFull {
			err = d.emitAllV1(b, true)
		}
	} else {
		err = d.emitAllV1(b, true)
	}
	if err != nil {
		b.owner, b.geoGen = nil, 0
		return nil, err
	}
	b.owner, b.geoGen, b.gen = d, d.geo1.gen, d.mutGen
	return b, nil
}

// emitDirtyV1 re-emits only the groups mutated since b's generation;
// everything else in b is already bit-exact for the current DAG.
func (d *DAG) emitDirtyV1(b *Blob) error {
	for g := range d.lastMut {
		if d.lastMut[g] <= b.gen {
			continue
		}
		if err := d.emitGroupV1(b, g, d.geo1.base[g]+d.geo1.capn[g], false); err != nil {
			return err
		}
	}
	return nil
}

// emitAllV1 serializes every group. With relayout, groups are packed
// at fresh bases with slack (used/8 + 8 node slots each) and the
// geometry generation advances; otherwise the existing regions are
// reused so the buffer stays exchangeable with its double-buffer twin.
func (d *DAG) emitAllV1(b *Blob, relayout bool) error {
	groups := 1 << uint(d.groupBits())
	d.geo1.ensure(groups)
	if !relayout {
		need := 2 * int(d.geo1.total)
		if need > cap(b.Nodes) {
			b.Nodes = make([]uint32, need)
		} else {
			b.Nodes = b.Nodes[:need]
		}
		for g := 0; g < groups; g++ {
			if err := d.emitGroupV1(b, g, d.geo1.base[g]+d.geo1.capn[g], false); err != nil {
				return err
			}
		}
		return nil
	}
	watermark := uint32(0)
	for g := 0; g < groups; g++ {
		d.geo1.base[g] = watermark
		if err := d.emitGroupV1(b, g, serialNoLimit, true); err != nil {
			return err
		}
		used := d.geo1.used[g]
		d.geo1.capn[g] = used + used/8 + 8
		watermark += d.geo1.capn[g]
	}
	d.geo1.total = watermark
	need := 2 * int(watermark)
	if need > cap(b.Nodes) {
		nn := make([]uint32, need)
		copy(nn, b.Nodes)
		b.Nodes = nn
	} else {
		b.Nodes = b.Nodes[:need]
	}
	d.geoSeq++
	d.geo1.gen = d.geoSeq
	return nil
}

// emitGroupV1 re-serializes one group: a fresh stamping epoch (so no
// stamp — and hence no sharing — crosses the group boundary), node
// indices assigned from the group's stable base, and the group's
// words emitted immediately while the stamps are valid (a later group
// restamps any subtree it shares). limit bounds the indices
// (exclusive); grow extends b.Nodes as the re-layout pass discovers
// sizes — the dirty path writes into fixed regions and never
// allocates.
func (d *DAG) emitGroupV1(b *Blob, g int, limit uint32, grow bool) error {
	base := d.geo1.base[g]
	d.nextEpoch()
	d.serialList = d.serialList[:0]
	d.serialBase = base
	d.serialLimit = limit
	if err := d.fillRoot(b.Root, d.groupNode[g], uint32(g), d.groupBits(), d.groupDef[g], d.assign); err != nil {
		return err
	}
	used := uint32(len(d.serialList))
	if grow {
		need := 2 * int(base+used)
		if need > cap(b.Nodes) {
			nn := make([]uint32, need, need+need/2)
			copy(nn, b.Nodes)
			b.Nodes = nn
		} else if need > len(b.Nodes) {
			b.Nodes = b.Nodes[:need]
		}
	}
	for i, n := range d.serialList {
		w := 2 * int(base+uint32(i))
		b.Nodes[w] = wordFor(n.left)
		b.Nodes[w+1] = wordFor(n.right)
	}
	d.geo1.used[g] = used
	return nil
}

// fillRoot writes the root-array entries covered by the plain-region
// node n at depth, i.e. slots [v<<(λ-depth), (v+1)<<(λ-depth)). def is
// the last label seen on the path, the inherited default packed into
// bits 24..31 of each entry. Folded subtrees cover their whole slot
// range with one payload: the index assign gives their interior or
// stride node — both serialized formats share this pass and differ
// only in what assign emits.
func (d *DAG) fillRoot(root []uint32, n *dnode, v uint32, depth int, def uint32, assign func(*dnode) (uint32, error)) error {
	lo := int(v) << uint(d.Lambda-depth)
	hi := lo + 1<<uint(d.Lambda-depth)
	if n == nil {
		fillWords(root[lo:hi], def<<24|blobNone)
		return nil
	}
	switch n.kind {
	case kindLeaf:
		fillWords(root[lo:hi], def<<24|blobLeafFlag|(n.label&0xFF))
		return nil
	case kindInt:
		idx, err := assign(n)
		if err != nil {
			return err
		}
		fillWords(root[lo:hi], def<<24|idx)
		return nil
	}
	if n.label != NoLabel {
		def = n.label
	}
	if depth == d.Lambda {
		// A plain node at the barrier: nothing folded hangs here (the
		// builder folds exactly at λ), only the default applies.
		root[lo] = def<<24 | blobNone
		return nil
	}
	if err := d.fillRoot(root, n.left, 2*v, depth+1, def, assign); err != nil {
		return err
	}
	return d.fillRoot(root, n.right, 2*v+1, depth+1, def, assign)
}

// assign gives a folded subtree dense preorder indices, stamping each
// interior node with its index under the current epoch; shared
// subtrees reached a second time within the group return their index
// immediately, preserving the hash-consed sharing in the blob.
func (d *DAG) assign(root *dnode) (uint32, error) {
	epoch := d.serialEpoch
	if root.serialEpoch == epoch {
		return root.serialIdx, nil
	}
	if err := d.stamp(root, epoch); err != nil {
		return 0, err
	}
	stack := append(d.serialStack[:0], root)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Stamp both children at the parent, left first, so siblings
		// take consecutive indices; push right below left so the left
		// subtree is walked first.
		l, r := n.left, n.right
		pushL := l.kind == kindInt && l.serialEpoch != epoch
		pushR := r.kind == kindInt && r.serialEpoch != epoch
		if pushL {
			if err := d.stamp(l, epoch); err != nil {
				d.serialStack = stack
				return 0, err
			}
		}
		if pushR {
			// l == r was stamped above; recheck keeps the scan
			// single-visit.
			if r.serialEpoch == epoch {
				pushR = false
			} else if err := d.stamp(r, epoch); err != nil {
				d.serialStack = stack
				return 0, err
			}
		}
		if pushR {
			stack = append(stack, r)
		}
		if pushL {
			stack = append(stack, l)
		}
	}
	d.serialStack = stack
	return root.serialIdx, nil
}

// stamp assigns n the next dense index of the current group's region.
func (d *DAG) stamp(n *dnode, epoch uint64) error {
	idx := d.serialBase + uint32(len(d.serialList))
	if idx > maxBlobIdx {
		return fmt.Errorf("ip6: too many folded nodes to serialize (%d)", idx)
	}
	if idx >= d.serialLimit {
		return errRegionFull
	}
	n.serialEpoch, n.serialIdx = epoch, idx
	d.serialList = append(d.serialList, n)
	return nil
}

// wordFor encodes a folded child as one 32-bit node word.
func wordFor(n *dnode) uint32 {
	if n.kind == kindLeaf {
		return wordLeafFlag | (n.label & 0xFF)
	}
	return n.serialIdx
}

// fillWords writes v into every slot; the compiler lowers this loop
// to a vectorized fill.
func fillWords(s []uint32, v uint32) {
	for i := range s {
		s[i] = v
	}
}

// shiftCursor packs the address bits below the barrier into a two-word
// shift register: bit λ of the address sits at bit 63 of hi. Go
// defines x>>64 as 0, so λ=0 and λ=64 need no special casing.
func shiftCursor(addr Addr, lambda int) (hi, lo uint64) {
	if lambda < 64 {
		return addr.Hi<<uint(lambda) | addr.Lo>>uint(64-lambda), addr.Lo << uint(lambda)
	}
	return addr.Lo << uint(lambda-64), 0
}

// Lookup performs longest prefix match on the serialized form: one
// root-array access plus one node-word access per level below the
// barrier, each consuming one bit of the 128-bit shift register.
func (b *Blob) Lookup(addr Addr) uint32 {
	ri := int(addr.Hi >> uint(64-b.Lambda))
	e := b.Root[ri]
	best := e >> 24
	pay := e & 0x00FFFFFF
	if pay == blobNone {
		return best
	}
	if pay&blobLeafFlag != 0 {
		if l := pay & 0xFF; l != NoLabel {
			best = l
		}
		return best
	}
	idx := pay
	hi, lo := shiftCursor(addr, b.Lambda)
	for q := b.Lambda; q < W; q++ {
		w := b.Nodes[2*idx+uint32(hi>>63)]
		hi = hi<<1 | lo>>63
		lo <<= 1
		if w&wordLeafFlag != 0 {
			if l := w & 0xFF; l != NoLabel {
				best = l
			}
			return best
		}
		idx = w
	}
	return best
}

// SizeBytes reports the byte size of the serialized structure.
func (b *Blob) SizeBytes() int {
	return 4 * (len(b.Root) + len(b.Nodes))
}
