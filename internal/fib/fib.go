// Package fib models an IP Forwarding Information Base as the paper's
// §2 describes it: a set of address-prefix → next-hop-label
// associations over a W-bit address space, together with a neighbor
// table mapping labels to next-hop metadata. Labels are positive
// integers 1..δ; label 0 plays the role of the paper's empty label ∅
// (no route).
package fib

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// W is the width of the IPv4 address space in bits.
const W = 32

// NoLabel is the empty label ∅: an address with this label has no
// route. The paper's invalid label ⊥ (blackhole) is likewise encoded
// as 0, since FIBs are assumed to contain no explicit blackhole routes.
const NoLabel uint32 = 0

// MaxLabel bounds the next-hop alphabet; δ ≪ N per the paper
// (δ = O(polylog N)), and 8 bits cover every FIB in the evaluation.
const MaxLabel uint32 = 255

// Entry is one FIB row: the prefix Addr/Len maps to next-hop NextHop.
// Addr is stored left-aligned: bit 31 is the first prefix bit, and all
// bits below position 32-Len must be zero.
type Entry struct {
	Addr    uint32
	Len     int
	NextHop uint32
}

// Prefix renders the entry's prefix in dotted-quad/len form.
func (e Entry) Prefix() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		e.Addr>>24, e.Addr>>16&0xFF, e.Addr>>8&0xFF, e.Addr&0xFF, e.Len)
}

func (e Entry) String() string {
	return fmt.Sprintf("%s -> %d", e.Prefix(), e.NextHop)
}

// Mask returns the netmask of a prefix length.
func Mask(plen int) uint32 {
	if plen <= 0 {
		return 0
	}
	if plen >= W {
		return ^uint32(0)
	}
	return ^uint32(0) << uint(W-plen)
}

// Bit extracts address bit q, counting from the MSB (q=0 is the first
// bit the trie walk consumes), matching the paper's bits(a, q, 1).
func Bit(addr uint32, q int) uint32 {
	return addr >> uint(W-1-q) & 1
}

// Canonical returns e with the host bits cleared.
func (e Entry) Canonical() Entry {
	e.Addr &= Mask(e.Len)
	return e
}

// Match reports whether the entry's prefix covers addr.
func (e Entry) Match(addr uint32) bool {
	return addr&Mask(e.Len) == e.Addr
}

// Neighbor holds per-next-hop metadata from the neighbor table of
// §2 (next-hop address, interface, etc.).
type Neighbor struct {
	Label   uint32
	Name    string
	Address uint32
}

// Table is a FIB in tabular form (Fig 1(a)).
type Table struct {
	Entries   []Entry
	Neighbors map[uint32]Neighbor
}

// New returns an empty table.
func New() *Table {
	return &Table{Neighbors: make(map[uint32]Neighbor)}
}

// Add appends an entry, canonicalising the prefix. It returns an error
// for malformed prefixes or labels.
func (t *Table) Add(addr uint32, plen int, nh uint32) error {
	if plen < 0 || plen > W {
		return fmt.Errorf("fib: prefix length %d out of range [0,%d]", plen, W)
	}
	if nh == NoLabel || nh > MaxLabel {
		return fmt.Errorf("fib: next-hop label %d out of range [1,%d]", nh, MaxLabel)
	}
	t.Entries = append(t.Entries, Entry{Addr: addr & Mask(plen), Len: plen, NextHop: nh})
	return nil
}

// Sort orders entries by (length, address); deterministic output for
// serialization and tests.
func (t *Table) Sort() {
	sort.Slice(t.Entries, func(i, j int) bool {
		a, b := t.Entries[i], t.Entries[j]
		if a.Len != b.Len {
			return a.Len < b.Len
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.NextHop < b.NextHop
	})
}

// Dedup removes duplicate prefixes, keeping the last occurrence (the
// most recent announcement wins, as in a routing table).
func (t *Table) Dedup() {
	seen := make(map[uint64]int, len(t.Entries))
	out := t.Entries[:0]
	for _, e := range t.Entries {
		key := uint64(e.Addr)<<6 | uint64(e.Len)
		if i, ok := seen[key]; ok {
			out[i] = e
			continue
		}
		seen[key] = len(out)
		out = append(out, e)
	}
	t.Entries = out
}

// N reports the number of entries (the paper's N).
func (t *Table) N() int { return len(t.Entries) }

// Delta reports the number of distinct next-hop labels (the paper's δ).
func (t *Table) Delta() int {
	seen := map[uint32]bool{}
	for _, e := range t.Entries {
		seen[e.NextHop] = true
	}
	return len(seen)
}

// NextHopHistogram counts entries per next-hop label. Note this is the
// distribution over table rows; the entropy the paper uses is over
// *leaf labels of the leaf-pushed trie* and is computed in package
// trie.
func (t *Table) NextHopHistogram() map[uint32]uint64 {
	h := map[uint32]uint64{}
	for _, e := range t.Entries {
		h[e.NextHop]++
	}
	return h
}

// HasDefaultRoute reports whether a 0-length prefix is present.
func (t *Table) HasDefaultRoute() bool {
	for _, e := range t.Entries {
		if e.Len == 0 {
			return true
		}
	}
	return false
}

// LookupLinear performs longest-prefix match by scanning every entry,
// the O(N) tabular lookup of Fig 1(a). It is the reference oracle the
// compressed structures are validated against.
func (t *Table) LookupLinear(addr uint32) uint32 {
	best := NoLabel
	bestLen := -1
	for _, e := range t.Entries {
		if e.Match(addr) && e.Len > bestLen {
			best = e.NextHop
			bestLen = e.Len
		}
	}
	return best
}

// SizeBitsTabular reports the storage of the tabular form,
// (W + lg δ)·N bits as in §2.
func (t *Table) SizeBitsTabular() int {
	return (W + ceilLog2(t.Delta())) * t.N()
}

func ceilLog2(x int) int {
	if x <= 1 {
		return 0
	}
	b := 0
	for v := x - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("fib: bad address %q", s)
	}
	var addr uint32
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 {
			return 0, fmt.Errorf("fib: bad address %q", s)
		}
		addr = addr<<8 | uint32(v)
	}
	return addr, nil
}

// ParsePrefix parses "a.b.c.d/len".
func ParsePrefix(s string) (uint32, int, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("fib: bad prefix %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return 0, 0, err
	}
	plen, err := strconv.Atoi(s[slash+1:])
	if err != nil || plen < 0 || plen > W {
		return 0, 0, fmt.Errorf("fib: bad prefix length in %q", s)
	}
	return addr & Mask(plen), plen, nil
}

// Read parses a FIB in the text format
//
//	# comment
//	a.b.c.d/len next-hop-label
//
// one entry per line.
func Read(r io.Reader) (*Table, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("fib: line %d: want 'prefix label', got %q", line, text)
		}
		addr, plen, err := ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("fib: line %d: %v", line, err)
		}
		nh, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("fib: line %d: bad label %q", line, fields[1])
		}
		if err := t.Add(addr, plen, uint32(nh)); err != nil {
			return nil, fmt.Errorf("fib: line %d: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Write serializes the table in the format Read accepts.
func (t *Table) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range t.Entries {
		if _, err := fmt.Fprintf(bw, "%s %d\n", e.Prefix(), e.NextHop); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MustParse builds a table from "prefix label" strings; it panics on
// malformed input and is intended for tests and examples.
func MustParse(lines ...string) *Table {
	t, err := Read(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		panic(err)
	}
	return t
}
